package client

import (
	"time"

	uc "unisoncache"
)

// This file is the service wire format, shared verbatim by the daemon
// (internal/serve decodes requests and marshals responses with exactly
// these types) and by this client. Simulation payloads — Run, SampleSpec,
// Result, SpeedupResult — ride along as their public unisoncache JSON
// forms, whose field names are stable and whose float64 values survive
// the round trip bit-exactly (Go emits the shortest representation that
// parses back to the same bits), which is what lets a sweep executed
// through the service reproduce the in-process CSVs byte for byte.

// RunRequest is the POST /v1/runs payload: one simulation.
type RunRequest struct {
	Run uc.Run `json:"run"`
}

// Sweep execution modes.
const (
	// ModeExecute runs every point through Execute (ExecuteMany).
	ModeExecute = "execute"
	// ModeSpeedup adds the memoized no-DRAM-cache baselines and returns
	// per-point speedups (SpeedupMany), or a CI-target sampled sweep
	// (SweepSampled) when Sample is set.
	ModeSpeedup = "speedup"
)

// SweepRequest is the POST /v1/sweeps payload: an ordered point list plus
// the execution mode. Results come back in point order, bit-identical to
// calling ExecuteMany / SpeedupMany / SweepSampled in-process.
type SweepRequest struct {
	Points []uc.Run `json:"points"`
	// Mode is ModeExecute (the default when empty) or ModeSpeedup.
	Mode string `json:"mode,omitempty"`
	// Sample, when non-nil, runs the sweep as a CI-target sampled plan
	// (SweepSampled with this spec). Requires ModeSpeedup.
	Sample *uc.SampleSpec `json:"sample,omitempty"`
}

// Job states.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// Job is a submitted request's lifecycle record, returned by the submit
// endpoints and GET /v1/jobs/{id}. Exactly one of Result, Results or
// Speedups is populated once State is StateDone, matching the request
// kind and mode.
type Job struct {
	ID    string `json:"id"`
	Kind  string `json:"kind"` // "run" or "sweep"
	State string `json:"state"`
	// Done counts run executions performed so far (cached or fresh);
	// Total is the planned upper bound — in-plan memoization can finish a
	// job below it, and sampled refinement rounds can exceed it. Treat
	// the pair as a progress hint; State is the source of truth.
	Done  int `json:"done"`
	Total int `json:"total"`
	// CacheHits counts the job's executions served straight from the
	// daemon's content-addressed result cache.
	CacheHits int    `json:"cache_hits"`
	Error     string `json:"error,omitempty"`

	// RequestID is the X-Unison-Request-Id the submission carried (minted
	// at whichever edge first saw the request); Spans is the job's stage
	// timeline — received, queued, how each execution was satisfied
	// (simulated, cache-hit, store-hit, peer-fill, proxied, coalesced),
	// and the terminal state — with offsets relative to receipt.
	RequestID string `json:"request_id,omitempty"`
	Spans     []Span `json:"spans,omitempty"`
	// SpansDropped counts timeline spans the daemon's per-job cap
	// discarded — nonzero means Spans is a truncated trace, not a short
	// one (a 100k-point sweep records far more executions than the cap
	// retains).
	SpansDropped int `json:"spans_dropped,omitempty"`

	Result   *uc.Result         `json:"result,omitempty"`
	Results  []uc.Result        `json:"results,omitempty"`
	Speedups []uc.SpeedupResult `json:"speedups,omitempty"`
}

// Terminal reports whether the job has finished (done, failed or
// canceled).
func (j Job) Terminal() bool {
	return j.State == StateDone || j.State == StateFailed || j.State == StateCanceled
}

// Event is one NDJSON line of the GET /v1/jobs/{id}/events progress
// stream. The stream opens with the job's current state, emits a line per
// state change or completed execution, and closes after the terminal
// line.
type Event struct {
	State string `json:"state"`
	Done  int    `json:"done"`
	Total int    `json:"total"`
	Error string `json:"error,omitempty"`

	RequestID string `json:"request_id,omitempty"`
	Spans     []Span `json:"spans,omitempty"`
}

// Span is one stage of a job's timeline: its name, when it started
// relative to the request being received, and how long it took (0 for
// instantaneous markers like the terminal state). Durations marshal as
// integer nanoseconds.
type Span struct {
	Stage string        `json:"stage"`
	Start time.Duration `json:"start_ns"`
	Dur   time.Duration `json:"dur_ns"`
}

// Health is the payload of GET /healthz (readiness: 503 + Ready=false
// while draining) and GET /livez (liveness: always 200).
type Health struct {
	Status string `json:"status"` // "ok", or "draining" during shutdown
	// Ready reports whether the daemon accepts new submissions.
	Ready    bool `json:"ready"`
	Draining bool `json:"draining"`
}

// errorBody is every non-2xx response's payload.
type errorBody struct {
	Error string `json:"error"`
}
