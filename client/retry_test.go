package client_test

import (
	"bytes"
	"context"
	"log/slog"
	"net"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	uc "unisoncache"
	"unisoncache/client"
	"unisoncache/internal/serve"
)

// flakyListener force-resets the first n accepted connections, so the
// client sees ECONNRESET before the request reaches any handler —
// exactly the transient class the retry policy targets.
type flakyListener struct {
	net.Listener
	n     int32
	drops int32
}

func (f *flakyListener) Accept() (net.Conn, error) {
	for {
		c, err := f.Listener.Accept()
		if err != nil {
			return nil, err
		}
		if atomic.AddInt32(&f.n, 1) <= f.drops {
			if tc, ok := c.(*net.TCPConn); ok {
				tc.SetLinger(0) // RST, not FIN
			}
			c.Close()
			continue
		}
		return c, nil
	}
}

// TestClientRetriesTransientConnectErrors: the first two connections are
// reset at the TCP level; the client must retry with backoff and the
// third attempt must carry the full POST body again (the rewind path) so
// the submit succeeds end to end.
func TestClientRetriesTransientConnectErrors(t *testing.T) {
	s := serve.New(serve.Config{Execute: fakeExecute})
	ts := httptest.NewUnstartedServer(s.Handler())
	ts.Listener = &flakyListener{Listener: ts.Listener, drops: 2}
	ts.Start()
	t.Cleanup(func() {
		ts.Close()
		s.Drain(context.Background())
	})

	cl := client.New(ts.URL)
	cl.RetryBackoff = time.Millisecond
	var retries []int
	cl.OnRetry = func(attempt int, wait time.Duration, err error) {
		if wait <= 0 || err == nil {
			t.Errorf("OnRetry(%d, %v, %v): bad arguments", attempt, wait, err)
		}
		retries = append(retries, attempt)
	}
	var logBuf syncBuffer
	cl.Logger = slog.New(slog.NewJSONHandler(&logBuf, nil))
	got, err := cl.Execute(context.Background(), run("web-search", uc.DesignUnison))
	if err != nil {
		t.Fatalf("Execute through flaky transport: %v", err)
	}
	want, _ := fakeExecute(run("web-search", uc.DesignUnison))
	if got.UIPC != want.UIPC {
		t.Fatalf("retried submit returned UIPC %v, want %v", got.UIPC, want.UIPC)
	}
	if len(retries) < 2 || retries[0] != 1 || retries[1] != 2 {
		t.Errorf("OnRetry attempts = %v, want [1 2 ...]", retries)
	}
	logged := logBuf.String()
	if !strings.Contains(logged, "retrying request") || !strings.Contains(logged, `"attempt":1`) {
		t.Errorf("retry log missing attempts:\n%s", logged)
	}
}

// syncBuffer is a mutex-guarded bytes.Buffer for concurrent log writes.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestClientRetryExhaustionCountsAttempts: when every attempt fails, the
// final error reports how many were made.
func TestClientRetryExhaustionCountsAttempts(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := "http://" + ln.Addr().String()
	ln.Close()

	cl := client.New(addr)
	cl.MaxRetries = 2
	cl.RetryBackoff = time.Millisecond
	_, err = cl.Health(context.Background())
	if err == nil {
		t.Fatal("Health against a closed port succeeded")
	}
	if !strings.Contains(err.Error(), "3 attempts") {
		t.Errorf("exhaustion error %q does not count the 3 attempts", err)
	}
}

// TestClientRetryDisabled: MaxRetries < 0 turns the policy off — a dead
// daemon fails the call on the first connect error instead of backing
// off.
func TestClientRetryDisabled(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := "http://" + ln.Addr().String()
	ln.Close()

	cl := client.New(addr)
	cl.MaxRetries = -1
	cl.RetryBackoff = time.Hour // would hang the test if a retry slept
	start := time.Now()
	if _, err := cl.Health(context.Background()); err == nil {
		t.Fatal("Health against a closed port succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("disabled retry still waited %v", elapsed)
	}
}

// TestClusterFanoutAndFailover: a three-member cluster where one member
// is a closed port. Routing must spread the points over the live nodes
// (failing over past the dead one) and reassemble results in point
// order, matching the in-process execution exactly.
func TestClusterFanoutAndFailover(t *testing.T) {
	var servers []*httptest.Server
	var addrs []string
	for i := 0; i < 2; i++ {
		s := serve.New(serve.Config{Execute: fakeExecute})
		ts := httptest.NewServer(s.Handler())
		servers = append(servers, ts)
		addrs = append(addrs, ts.URL)
		t.Cleanup(func() {
			ts.Close()
			s.Drain(context.Background())
		})
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := "http://" + ln.Addr().String()
	ln.Close()
	addrs = append(addrs, dead)

	cl, err := client.NewCluster(addrs)
	if err != nil {
		t.Fatal(err)
	}
	cl.Node(dead).MaxRetries = -1 // fail over fast in the test

	var points []uc.Run
	for i := 0; i < 9; i++ {
		p := run("web-search", uc.DesignUnison)
		p.Capacity = uint64(i+1) << 20
		points = append(points, p)
	}
	got, err := cl.ExecuteMany(context.Background(), points)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(points) {
		t.Fatalf("got %d results for %d points", len(got), len(points))
	}
	for i, p := range points {
		want, _ := fakeExecute(p)
		if got[i].UIPC != want.UIPC {
			t.Fatalf("point %d: UIPC %v, want %v", i, got[i].UIPC, want.UIPC)
		}
	}

	// The single-run path fails over too, whichever member owns the key.
	if _, err := cl.Execute(context.Background(), points[0]); err != nil {
		t.Fatalf("Execute with a dead member: %v", err)
	}
	// Health must report the dead member.
	if _, err := cl.Health(context.Background()); err == nil {
		t.Fatal("cluster Health ignored a dead member")
	}
}
