package client

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	uc "unisoncache"
	"unisoncache/internal/cluster"
	"unisoncache/internal/obs"
)

// Cluster is a fan-out client for a sharded unisonserved deployment: it
// builds the same consistent-hash ring the daemons build from the shared
// member list and routes each run to the daemon that owns its key, so a
// plan's points land directly on the nodes whose caches and stores hold
// them. An unreachable node fails over along the ring's preference order
// (the owner's daemon would route a misdirected run itself, so failover
// only costs an extra hop, never a wrong answer).
//
//	cl, err := client.NewCluster([]string{
//	    "http://127.0.0.1:8080",
//	    "http://127.0.0.1:8081",
//	    "http://127.0.0.1:8082",
//	})
//
// A single-address Cluster degenerates to a plain Client with retry
// semantics, so callers can treat "one daemon" and "many daemons" as the
// same type (cmd/experiments does exactly this for its -server flag).
type Cluster struct {
	ring  *cluster.Ring
	nodes map[string]*Client
}

// NewCluster builds a fan-out client over the daemon base URLs. The list
// must match the daemons' own -peers configuration (same URLs, any
// order) for direct routing; a differing list still returns correct
// results because daemons forward misrouted work to the true owner.
func NewCluster(addrs []string) (*Cluster, error) {
	var clean []string
	for _, a := range addrs {
		if a = strings.TrimSpace(a); a != "" {
			clean = append(clean, strings.TrimRight(a, "/"))
		}
	}
	ring := cluster.New(clean, 0)
	if ring == nil {
		return nil, errors.New("client: cluster needs at least one daemon address")
	}
	c := &Cluster{ring: ring, nodes: make(map[string]*Client, len(ring.Nodes()))}
	for _, n := range ring.Nodes() {
		c.nodes[n] = New(n)
	}
	return c, nil
}

// Nodes returns the sorted member list the ring was built over.
func (c *Cluster) Nodes() []string { return c.ring.Nodes() }

// Node returns the per-daemon client for addr (nil if addr is not a
// member). Exposed so callers can tune retry knobs or query one node's
// /metrics directly.
func (c *Cluster) Node(addr string) *Client { return c.nodes[strings.TrimRight(addr, "/")] }

// routeKey returns the ring key for a run: its canonical content
// address when computable, else a digest of the run's JSON. The
// fallback covers replay runs whose trace file is not readable on the
// client machine — the receiving daemon recomputes the canonical key
// and forwards if it lands elsewhere, so routing stays correct either
// way.
func routeKey(r uc.Run) string {
	if key, err := uc.RunKey(r); err == nil {
		return key
	}
	blob, err := json.Marshal(r)
	if err != nil {
		blob = []byte(fmt.Sprintf("%+v", r))
	}
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:])
}

// failover runs call against each node in pref order, moving on only
// when the node was unreachable (transport-level failure). A response
// from a daemon — success or error — is final: the work may have
// executed, so replaying it elsewhere is wasteful at best.
func (c *Cluster) failover(ctx context.Context, pref []string, call func(*Client) error) error {
	var lastErr error
	for _, addr := range pref {
		err := call(c.nodes[addr])
		if err == nil {
			return nil
		}
		var ae *apiError
		if errors.As(err, &ae) {
			return err
		}
		lastErr = err
		if ctx.Err() != nil {
			return lastErr
		}
	}
	return fmt.Errorf("client: every cluster node failed, last: %w", lastErr)
}

// Health checks every member and returns the first node's report; any
// unreachable or unhealthy member fails the whole call, making this the
// "is the cluster ready" probe.
func (c *Cluster) Health(ctx context.Context) (Health, error) {
	var first Health
	for i, addr := range c.ring.Nodes() {
		h, err := c.nodes[addr].Health(ctx)
		if err != nil {
			return Health{}, fmt.Errorf("client: node %s: %w", addr, err)
		}
		if i == 0 {
			first = h
		}
	}
	return first, nil
}

// Execute routes one run to the daemon owning its key, failing over
// along the preference order if that node is unreachable. One request ID
// covers every attempt, so a failed-over run still reads as one trace.
func (c *Cluster) Execute(ctx context.Context, run uc.Run) (uc.Result, error) {
	ctx, _ = obs.EnsureRequestID(ctx)
	var res uc.Result
	err := c.failover(ctx, c.ring.Preference(routeKey(run)), func(cl *Client) error {
		r, err := cl.Execute(ctx, run)
		if err == nil {
			res = r
		}
		return err
	})
	return res, err
}

// ExecuteMany partitions the points by owning daemon, submits each
// partition as one sweep job in parallel, and merges the results back
// into point order. Each daemon therefore executes (or serves from
// cache) exactly the keys it owns — the same placement its own routing
// would produce, without N proxy hops.
func (c *Cluster) ExecuteMany(ctx context.Context, points []uc.Run) ([]uc.Result, error) {
	if len(points) == 0 {
		return nil, nil
	}
	ctx, _ = obs.EnsureRequestID(ctx)
	type part struct {
		idx  []int
		runs []uc.Run
		key  string // a representative key, for the failover order
	}
	parts := make(map[string]*part)
	for i, p := range points {
		key := routeKey(p)
		owner := c.ring.Owner(key)
		pt := parts[owner]
		if pt == nil {
			pt = &part{key: key}
			parts[owner] = pt
		}
		pt.idx = append(pt.idx, i)
		pt.runs = append(pt.runs, p)
	}

	results := make([]uc.Result, len(points))
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for _, pt := range parts {
		wg.Add(1)
		go func(pt *part) {
			defer wg.Done()
			var res []uc.Result
			err := c.failover(ctx, c.ring.Preference(pt.key), func(cl *Client) error {
				r, err := cl.ExecuteMany(ctx, pt.runs)
				if err == nil {
					res = r
				}
				return err
			})
			if err == nil && len(res) != len(pt.runs) {
				err = fmt.Errorf("client: cluster sweep returned %d results for %d points", len(res), len(pt.runs))
			}
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			for j, i := range pt.idx {
				results[i] = res[j]
			}
		}(pt)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return results, nil
}

// coordinator picks the daemon that runs a whole-plan job (speedup
// sweeps, sampled sweeps): a stable digest of the point keys chooses
// the node, so resubmitting the same plan lands on the same daemon and
// hits its plan-level caches. The coordinator's own server-side routing
// spreads the member runs across the ring.
func (c *Cluster) coordinator(points []uc.Run) []string {
	keys := make([]string, len(points))
	for i, p := range points {
		keys[i] = routeKey(p)
	}
	sort.Strings(keys)
	h := sha256.New()
	for _, k := range keys {
		h.Write([]byte(k))
		h.Write([]byte{'\n'})
	}
	return c.ring.Preference(hex.EncodeToString(h.Sum(nil)))
}

// SpeedupMany submits the whole plan to one coordinator daemon (chosen
// by the plan's key digest) so baseline memoization happens once, with
// ring failover if it is down.
func (c *Cluster) SpeedupMany(ctx context.Context, points []uc.Run) ([]uc.SpeedupResult, error) {
	ctx, _ = obs.EnsureRequestID(ctx)
	var out []uc.SpeedupResult
	err := c.failover(ctx, c.coordinator(points), func(cl *Client) error {
		r, err := cl.SpeedupMany(ctx, points)
		if err == nil {
			out = r
		}
		return err
	})
	return out, err
}

// SweepSampled submits a CI-target sampled sweep to the plan's
// coordinator daemon.
func (c *Cluster) SweepSampled(ctx context.Context, points []uc.Run, spec uc.SampleSpec) ([]uc.SpeedupResult, error) {
	ctx, _ = obs.EnsureRequestID(ctx)
	var out []uc.SpeedupResult
	err := c.failover(ctx, c.coordinator(points), func(cl *Client) error {
		r, err := cl.SweepSampled(ctx, points, spec)
		if err == nil {
			out = r
		}
		return err
	})
	return out, err
}
