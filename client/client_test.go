package client_test

import (
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"

	uc "unisoncache"
	"unisoncache/client"
	"unisoncache/internal/serve"
)

// fakeExecute mirrors the serve tests' deterministic fake.
func fakeExecute(r uc.Run) (uc.Result, error) {
	if r.Workload == "software-testing" {
		return uc.Result{}, errors.New("synthetic failure")
	}
	res := uc.Result{Run: r}
	res.UIPC = 1 + float64(len(r.Workload)) + float64(r.Capacity%97)
	if r.Design == uc.DesignNone {
		res.UIPC = 2
	}
	return res, nil
}

// newFake starts a fake-execution daemon and a client on it.
func newFake(t *testing.T) (*client.Client, *httptest.Server) {
	t.Helper()
	s := serve.New(serve.Config{Execute: fakeExecute})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Drain(context.Background())
	})
	return client.New(ts.URL), ts
}

func run(w string, d uc.DesignKind) uc.Run {
	return uc.Run{Workload: w, Design: d, Capacity: 256 << 20, Cores: 2, AccessesPerCore: 4_000}
}

// TestClientExecute: submit → event-stream wait → result unwrap, and the
// cached resubmission path.
func TestClientExecute(t *testing.T) {
	cl, _ := newFake(t)
	ctx := context.Background()

	want, _ := fakeExecute(run("web-search", uc.DesignUnison))
	got, err := cl.Execute(ctx, run("web-search", uc.DesignUnison))
	if err != nil {
		t.Fatal(err)
	}
	wb, _ := json.Marshal(want)
	gb, _ := json.Marshal(got)
	if string(wb) != string(gb) {
		t.Fatalf("Execute = %s, want %s", gb, wb)
	}

	// Cached resubmission: SubmitRun comes back already terminal.
	j, err := cl.SubmitRun(ctx, run("web-search", uc.DesignUnison))
	if err != nil {
		t.Fatal(err)
	}
	if !j.Terminal() || j.Result == nil || j.CacheHits != 1 {
		t.Fatalf("cached submit = %+v, want synchronously-done job", j)
	}

	m, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m["unisonserved_cache_hits_total"] != 1 || m["unisonserved_cache_misses_total"] != 1 {
		t.Errorf("metrics = %v, want 1 hit / 1 miss", m)
	}
}

// TestClientSweeps: ExecuteMany and SpeedupMany return point-ordered
// results matching the in-process engine run over the same fake.
func TestClientSweeps(t *testing.T) {
	cl, _ := newFake(t)
	ctx := context.Background()
	points := []uc.Run{
		run("web-search", uc.DesignUnison),
		run("web-search", uc.DesignAlloy),
		run("data-serving", uc.DesignUnison),
	}

	wantRes, err := uc.ExecuteMany(uc.Plan{Points: points, Executor: fakeExecute})
	if err != nil {
		t.Fatal(err)
	}
	gotRes, err := cl.ExecuteMany(ctx, points)
	if err != nil {
		t.Fatal(err)
	}
	wb, _ := json.Marshal(wantRes)
	gb, _ := json.Marshal(gotRes)
	if string(wb) != string(gb) {
		t.Fatalf("ExecuteMany diverges:\n got %s\nwant %s", gb, wb)
	}

	wantSp, err := uc.SpeedupMany(uc.Plan{Points: points, Executor: fakeExecute})
	if err != nil {
		t.Fatal(err)
	}
	gotSp, err := cl.SpeedupMany(ctx, points)
	if err != nil {
		t.Fatal(err)
	}
	wb, _ = json.Marshal(wantSp)
	gb, _ = json.Marshal(gotSp)
	if string(wb) != string(gb) {
		t.Fatalf("SpeedupMany diverges:\n got %s\nwant %s", gb, wb)
	}
}

// TestClientErrors: failed jobs, decode rejections and health surface as
// useful errors.
func TestClientErrors(t *testing.T) {
	cl, _ := newFake(t)
	ctx := context.Background()

	// software-testing makes the fake fail → job fails → Execute errors.
	_, err := cl.Execute(ctx, run("software-testing", uc.DesignUnison))
	if err == nil || !strings.Contains(err.Error(), "synthetic failure") {
		t.Errorf("failed-job error = %v, want the execution failure", err)
	}

	// A bad design is rejected at submit time with the server's message.
	_, err = cl.Execute(ctx, run("web-search", "unicorn"))
	if err == nil || !strings.Contains(err.Error(), `unknown design "unicorn"`) {
		t.Errorf("decode-reject error = %v", err)
	}

	h, err := cl.Health(ctx)
	if err != nil || h.Status != "ok" || h.Draining {
		t.Errorf("Health = %+v, %v", h, err)
	}

	if _, err := cl.Job(ctx, "nope"); err == nil {
		t.Error("Job(nope) succeeded, want 404 error")
	}
}

// TestClientWaitCancel: a canceled job turns into an error, not a hang.
func TestClientWaitCancel(t *testing.T) {
	release := make(chan struct{})
	s := serve.New(serve.Config{
		Workers: 1,
		Execute: func(r uc.Run) (uc.Result, error) {
			<-release
			return fakeExecute(r)
		},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Drain(context.Background())
	cl := client.New(ts.URL)
	ctx := context.Background()

	blocker, err := cl.SubmitRun(ctx, run("web-search", uc.DesignUnison))
	if err != nil {
		t.Fatal(err)
	}
	queued, err := cl.SubmitRun(ctx, run("web-search", uc.DesignAlloy))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Cancel(ctx, queued.ID); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := cl.Execute(ctx, run("web-search", uc.DesignFootprint))
		done <- err
	}()
	j, err := cl.Wait(ctx, queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if j.State != client.StateCanceled {
		t.Errorf("canceled job state %q", j.State)
	}
	close(release) // unblock the blocker and everything behind it
	if err := <-done; err != nil {
		t.Errorf("Execute behind the queue: %v", err)
	}
	if b, err := cl.Wait(ctx, blocker.ID); err != nil || b.State != client.StateDone {
		t.Errorf("blocker = %+v, %v; want done", b, err)
	}
}
