package unisoncache_test

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	uc "unisoncache"
)

// kvProfile is a small, valid custom workload for registry tests.
func kvProfile() uc.Profile {
	return uc.Profile{
		WorkingSetBytes: 512 << 20,
		ZipfTheta:       0.8,
		PCs:             64,
		PCZipfTheta:     0.5,
		DensityMin:      0.2,
		DensityMax:      0.6,
		SingletonPCFrac: 0.1,
		PatternNoise:    0.03,
		AffinityClasses: 64,
		AffinityEscape:  0.02,
		WriteFrac:       0.25,
		GapMean:         12,
		RepeatMean:      0.8,
	}
}

func TestRegisterWorkloadExecutes(t *testing.T) {
	if err := uc.RegisterWorkload("test-kv", kvProfile()); err != nil {
		t.Fatal(err)
	}
	res := run(t, uc.Run{Workload: "test-kv", Design: uc.DesignUnison, Capacity: 128 << 20, Cores: 4})
	if res.UIPC <= 0 || res.Design.Reads == 0 {
		t.Errorf("registered workload produced no work: %+v", res.Results)
	}
	if res.Run.Workload != "test-kv" {
		t.Errorf("Run echo = %q", res.Run.Workload)
	}
	got, ok := uc.WorkloadProfile("test-kv")
	if !ok || got != kvProfile() {
		t.Errorf("WorkloadProfile round trip: %+v (ok=%v)", got, ok)
	}
	found := false
	for _, w := range uc.Workloads() {
		if w == "test-kv" {
			found = true
		}
	}
	if !found {
		t.Errorf("Workloads() = %v does not list test-kv", uc.Workloads())
	}
}

func TestRegisterWorkloadRejectsBadInput(t *testing.T) {
	if err := uc.RegisterWorkload("", kvProfile()); err == nil {
		t.Error("empty name accepted")
	}
	if err := uc.RegisterWorkload("web-search", kvProfile()); err == nil {
		t.Error("built-in shadowing accepted")
	}
	bad := kvProfile()
	bad.DensityMin = 0
	if err := uc.RegisterWorkload("test-bad", bad); err == nil {
		t.Error("invalid profile accepted")
	}
	if _, ok := uc.WorkloadProfile("test-bad"); ok {
		t.Error("rejected profile was registered anyway")
	}
}

func TestWorkloadsListingStable(t *testing.T) {
	builtins := []string{"data-analytics", "data-serving", "software-testing", "web-search", "web-serving", "tpch"}
	a, b := uc.Workloads(), uc.Workloads()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("consecutive Workloads() calls differ: %v vs %v", a, b)
	}
	if len(a) < len(builtins) {
		t.Fatalf("Workloads() = %v lost built-ins", a)
	}
	if !reflect.DeepEqual(a[:len(builtins)], builtins) {
		t.Errorf("built-ins not a stable prefix: %v", a[:len(builtins)])
	}
	if !reflect.DeepEqual(uc.Designs(), uc.Designs()) {
		t.Error("consecutive Designs() calls differ")
	}
}

// TestRegisteredWorkloadSpeedupMemoized pins the baseline-memoization
// contract for registry workloads: two design points over the same
// registered workload must share one bit-identical baseline.
func TestRegisteredWorkloadSpeedupMemoized(t *testing.T) {
	if err := uc.RegisterWorkload("test-kv-sweep", kvProfile()); err != nil {
		t.Fatal(err)
	}
	base := uc.Run{Workload: "test-kv-sweep", Design: uc.DesignUnison, Capacity: 128 << 20,
		Cores: 4, AccessesPerCore: 20_000}
	alloy := base
	alloy.Design = uc.DesignAlloy
	res, err := uc.SpeedupMany(uc.Plan{Points: []uc.Run{base, alloy}})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if r.Speedup <= 0 {
			t.Errorf("point %d: speedup %v", i, r.Speedup)
		}
		if r.Baseline.Design.Name != "none" {
			t.Errorf("point %d: baseline design %q", i, r.Baseline.Design.Name)
		}
	}
	if !reflect.DeepEqual(res[0].Baseline.Results, res[1].Baseline.Results) {
		t.Error("the two design points did not share one memoized baseline")
	}
}

// TestRecordReplayBitIdentical is the acceptance criterion: a run replayed
// from a .utrace capture yields Results bit-identical to the live
// synthetic-stream run.
func TestRecordReplayBitIdentical(t *testing.T) {
	r := uc.Run{Workload: "web-serving", Design: uc.DesignUnison, Capacity: 256 << 20,
		Cores: 4, Seed: 3, AccessesPerCore: 30_000}
	live, err := uc.Execute(r)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := uc.RecordTrace(r, &buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "run.utrace")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	replay := r
	replay.TracePath = path
	replayed, err := uc.Execute(replay)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(live.Results, replayed.Results) {
		t.Errorf("replay diverged from live run:\nlive   %+v\nreplay %+v", live.Results, replayed.Results)
	}

	// A replay run may leave the stream-shaped fields zero: the header
	// fills them in.
	bare := uc.Run{Design: uc.DesignUnison, Capacity: 256 << 20, TracePath: path}
	bareRes, err := uc.Execute(bare)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(live.Results, bareRes.Results) {
		t.Error("header-defaulted replay diverged from live run")
	}
	if bareRes.Run.Workload != "web-serving" || bareRes.Run.Seed != 3 ||
		bareRes.Run.Cores != 4 || bareRes.Run.AccessesPerCore != 30_000 {
		t.Errorf("replay Run echo not filled from header: %+v", bareRes.Run)
	}
}

func TestReplayRejectsHeaderMismatch(t *testing.T) {
	r := uc.Run{Workload: "web-search", Design: uc.DesignUnison, Capacity: 128 << 20,
		Cores: 2, Seed: 9, AccessesPerCore: 2_000}
	var buf bytes.Buffer
	if err := uc.RecordTrace(r, &buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "run.utrace")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		mut  func(*uc.Run)
	}{
		{"wrong workload", func(r *uc.Run) { r.Workload = "tpch" }},
		{"wrong seed", func(r *uc.Run) { r.Seed = 8 }},
		{"wrong cores", func(r *uc.Run) { r.Cores = 4 }},
		{"wrong scale divisor", func(r *uc.Run) { r.ScaleDivisor = 64 }},
		{"wrong capacity changes auto divisor", func(r *uc.Run) { r.Capacity = 8 << 30 }},
		{"too many accesses", func(r *uc.Run) { r.AccessesPerCore = 5_000 }},
	}
	for _, c := range cases {
		bad := r
		bad.TracePath = path
		c.mut(&bad)
		if _, err := uc.Execute(bad); err == nil {
			t.Errorf("%s accepted", c.name)
		}
	}

	// A prefix replay is allowed, and still deterministic.
	prefix := r
	prefix.TracePath = path
	prefix.AccessesPerCore = 1_000
	if _, err := uc.Execute(prefix); err != nil {
		t.Errorf("prefix replay rejected: %v", err)
	}
}

func TestReplayPathErrors(t *testing.T) {
	missing := uc.Run{Design: uc.DesignUnison, Capacity: 128 << 20,
		TracePath: filepath.Join(t.TempDir(), "absent.utrace")}
	if _, err := uc.Execute(missing); err == nil {
		t.Error("missing trace file accepted")
	}
	if err := uc.RecordTrace(missing, &bytes.Buffer{}); err == nil {
		t.Error("RecordTrace with TracePath set accepted")
	}
	if err := uc.RecordTrace(uc.Run{Workload: "nope", Capacity: 128 << 20}, &bytes.Buffer{}); err == nil {
		t.Error("RecordTrace with unknown workload accepted")
	}
	if err := uc.RecordTrace(uc.Run{Workload: "web-search", Cores: -2, Capacity: 128 << 20}, &bytes.Buffer{}); err == nil {
		t.Error("RecordTrace with negative cores accepted")
	}
	if _, err := uc.Execute(uc.Run{Workload: "web-search", Design: uc.DesignUnison, Cores: -2,
		Capacity: 128 << 20, AccessesPerCore: 100}); err == nil {
		t.Error("Execute with negative cores accepted")
	}
}
