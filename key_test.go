package unisoncache_test

import (
	"os"
	"path/filepath"
	"testing"

	uc "unisoncache"
)

// TestRunKeyCanonical: the content-addressed key collapses implicit and
// explicit defaults, separates genuinely different configurations, and
// is a stable 64-hex-digit SHA-256.
func TestRunKeyCanonical(t *testing.T) {
	implicit := uc.Run{Workload: "web-search", Design: uc.DesignUnison, Capacity: 1 << 30}
	explicit := uc.Run{
		Workload: "web-search", Design: uc.DesignUnison, Capacity: 1 << 30,
		AccessesPerCore: 400_000, Seed: 1, Cores: 16,
		UnisonWays: 4, FCWays: 32, ScaleDivisor: uc.AutoScaleDivisor(1 << 30),
	}
	k1, err := uc.RunKey(implicit)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := uc.RunKey(explicit)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Errorf("implicit/explicit defaults: %s != %s", k1, k2)
	}
	if len(k1) != 64 {
		t.Errorf("key %q is not a sha256 hex digest", k1)
	}
	other := implicit
	other.Seed = 2
	if k3, _ := uc.RunKey(other); k3 == k1 {
		t.Error("seed change kept the key")
	}
}

// TestRunKeyTraceDigest: a replay run's key binds both the capture path
// (Execute echoes it verbatim in Result.Run, so distinct paths must not
// share cached results) and the capture's content (editing the file
// under an unchanged path invalidates the key — the property that makes
// TracePath runs safe to cache). A missing file is an error.
func TestRunKeyTraceDigest(t *testing.T) {
	dir := t.TempDir()
	rec := uc.Run{Workload: "web-search", Capacity: 256 << 20, Cores: 2, AccessesPerCore: 500}
	write := func(name string) string {
		t.Helper()
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := uc.RecordTrace(rec, f); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		return path
	}
	a, b := write("a.utrace"), write("b.utrace")

	run := uc.Run{Design: uc.DesignUnison, Capacity: 256 << 20, TracePath: a}
	ka, err := uc.RunKey(run)
	if err != nil {
		t.Fatal(err)
	}
	// Stable: rehashing the same path + content reproduces the key.
	if again, _ := uc.RunKey(run); again != ka {
		t.Errorf("key not stable: %s vs %s", ka, again)
	}
	run.TracePath = b
	kb, err := uc.RunKey(run)
	if err != nil {
		t.Fatal(err)
	}
	if ka == kb {
		t.Error("identical captures at different paths share a key — a cached Result would echo the wrong TracePath")
	}

	// Flip one byte: the same path must now key differently.
	data, err := os.ReadFile(b)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(b, data, 0o644); err != nil {
		t.Fatal(err)
	}
	kc, err := uc.RunKey(run)
	if err != nil {
		t.Fatal(err)
	}
	if kc == kb {
		t.Error("capture content changed but the key did not")
	}

	run.TracePath = filepath.Join(dir, "missing.utrace")
	if _, err := uc.RunKey(run); err == nil {
		t.Error("missing trace file produced a key")
	}
}
