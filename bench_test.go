// Benchmarks regenerating every table and figure of the paper's evaluation
// at reduced trace length — one benchmark per experiment, matching the
// DESIGN.md per-experiment index. Each iteration runs a complete simulation
// and reports the experiment's headline metric via b.ReportMetric, so
// `go test -bench=. -benchmem` doubles as a smoke-level reproduction:
//
//	BenchmarkTable5Predictors/web-search   fp_acc_pct, wp_acc_pct
//	BenchmarkFig6MissRatio/...             miss_pct per design
//	BenchmarkFig7Performance/...           speedup per design
//
// cmd/experiments runs the same experiments at full length.
package unisoncache_test

import (
	"fmt"
	"testing"

	uc "unisoncache"
	"unisoncache/internal/mem"
)

// benchAccesses keeps each iteration fast while still cycling the scaled
// caches enough to exercise eviction-trained prediction.
const benchAccesses = 60_000

func execute(b *testing.B, r uc.Run) uc.Result {
	b.Helper()
	r.AccessesPerCore = benchAccesses
	res, err := uc.Execute(r)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkTable2Geometry regenerates the computed rows of Table II: row
// layouts and blocks-per-row for the three designs.
func BenchmarkTable2Geometry(b *testing.B) {
	var blocks int
	for i := 0; i < b.N; i++ {
		u960 := mem.UnisonGeometry(15, 4)
		u1984 := mem.UnisonGeometry(31, 4)
		alloy := mem.AlloyGeometry()
		blocks = u960.DataBlocksPerRow() + u1984.DataBlocksPerRow() + alloy.DataBlocksPerRow()
	}
	b.ReportMetric(float64(mem.UnisonGeometry(15, 4).DataBlocksPerRow()), "uc960_blocks_per_row")
	b.ReportMetric(float64(mem.UnisonGeometry(31, 4).DataBlocksPerRow()), "uc1984_blocks_per_row")
	_ = blocks
}

// BenchmarkTable5Predictors regenerates the predictor-accuracy table: the
// footprint and way predictors of Unison Cache per workload at 1 GB (8 GB
// for TPC-H).
func BenchmarkTable5Predictors(b *testing.B) {
	for _, w := range uc.Workloads() {
		b.Run(w, func(b *testing.B) {
			capacity := uint64(1 << 30)
			if w == "tpch" {
				capacity = 8 << 30
			}
			var res uc.Result
			for i := 0; i < b.N; i++ {
				res = execute(b, uc.Run{Workload: w, Design: uc.DesignUnison, Capacity: capacity})
			}
			b.ReportMetric(res.Design.FP.Percent(), "fp_acc_pct")
			b.ReportMetric(res.Design.FO.Percent(), "fp_overfetch_pct")
			b.ReportMetric(res.Design.WP.Percent(), "wp_acc_pct")
		})
	}
}

// BenchmarkTable5MissPredictor covers the Alloy Cache MP rows of Table V.
func BenchmarkTable5MissPredictor(b *testing.B) {
	for _, w := range []string{"web-search", "data-analytics"} {
		b.Run(w, func(b *testing.B) {
			var res uc.Result
			for i := 0; i < b.N; i++ {
				res = execute(b, uc.Run{Workload: w, Design: uc.DesignAlloy, Capacity: 1 << 30})
			}
			b.ReportMetric(res.Design.MP.Percent(), "mp_acc_pct")
			b.ReportMetric(res.Design.MPOverfetchPct, "mp_overfetch_pct")
		})
	}
}

// BenchmarkFig5Associativity regenerates the Figure 5 sweep: Unison Cache
// miss ratio with 1, 4 and 32 ways.
func BenchmarkFig5Associativity(b *testing.B) {
	for _, ways := range []int{1, 4, 32} {
		b.Run(fmt.Sprintf("ways-%d", ways), func(b *testing.B) {
			var res uc.Result
			for i := 0; i < b.N; i++ {
				res = execute(b, uc.Run{Workload: "web-serving", Design: uc.DesignUnison,
					Capacity: 1 << 30, UnisonWays: ways})
			}
			b.ReportMetric(res.MissRatioPct(), "miss_pct")
		})
	}
}

// BenchmarkFig6MissRatio regenerates one Figure 6 column per design.
func BenchmarkFig6MissRatio(b *testing.B) {
	for _, d := range []uc.DesignKind{uc.DesignAlloy, uc.DesignFootprint, uc.DesignUnison} {
		b.Run(string(d), func(b *testing.B) {
			var res uc.Result
			for i := 0; i < b.N; i++ {
				res = execute(b, uc.Run{Workload: "web-search", Design: d, Capacity: 512 << 20})
			}
			b.ReportMetric(res.MissRatioPct(), "miss_pct")
		})
	}
}

// BenchmarkFig7Performance regenerates one Figure 7 cell per design:
// speedup over the no-DRAM-cache baseline at 1 GB.
func BenchmarkFig7Performance(b *testing.B) {
	base := execute(b, uc.Run{Workload: "data-serving", Design: uc.DesignNone, Capacity: 1 << 30})
	for _, d := range []uc.DesignKind{uc.DesignAlloy, uc.DesignFootprint, uc.DesignUnison, uc.DesignIdeal} {
		b.Run(string(d), func(b *testing.B) {
			var res uc.Result
			for i := 0; i < b.N; i++ {
				res = execute(b, uc.Run{Workload: "data-serving", Design: d, Capacity: 1 << 30})
			}
			b.ReportMetric(res.UIPC/base.UIPC, "speedup")
			b.ReportMetric(res.UIPC, "uipc")
		})
	}
}

// BenchmarkFig7Sweep measures the sweep engine on a reduced Figure 7
// matrix (2 workloads x 2 sizes x 4 designs). "serial" is the
// pre-runner path — one Execute per design point plus one DesignNone
// Execute per point; "engine" is SpeedupMany, which fans the same points
// over the worker pool and runs each cell's baseline once instead of four
// times (20 executions instead of 32, concurrently). Both produce
// bit-identical speedups.
func BenchmarkFig7Sweep(b *testing.B) {
	sweep := uc.Sweep{
		Base:       uc.Run{AccessesPerCore: 20_000},
		Workloads:  []string{"web-search", "data-serving"},
		Capacities: []uint64{256 << 20, 1 << 30},
		Designs:    []uc.DesignKind{uc.DesignAlloy, uc.DesignFootprint, uc.DesignUnison, uc.DesignIdeal},
	}
	points := sweep.Points()
	b.Run("serial", func(b *testing.B) {
		var last float64
		for i := 0; i < b.N; i++ {
			for _, r := range points {
				res, err := uc.Execute(r)
				if err != nil {
					b.Fatal(err)
				}
				base := r
				base.Design = uc.DesignNone
				baseRes, err := uc.Execute(base)
				if err != nil {
					b.Fatal(err)
				}
				last = res.UIPC / baseRes.UIPC
			}
		}
		b.ReportMetric(last, "last_speedup")
	})
	b.Run("engine", func(b *testing.B) {
		var last float64
		for i := 0; i < b.N; i++ {
			results, err := uc.SpeedupMany(uc.Plan{Points: points})
			if err != nil {
				b.Fatal(err)
			}
			last = results[len(results)-1].Speedup
		}
		b.ReportMetric(last, "last_speedup")
	})
}

// BenchmarkFig8TPCH regenerates the Figure 8 extremes: TPC-H at 1 GB and
// 8 GB for Unison Cache.
func BenchmarkFig8TPCH(b *testing.B) {
	for _, size := range []uint64{1 << 30, 8 << 30} {
		b.Run(fmt.Sprintf("%dGB", size>>30), func(b *testing.B) {
			base := execute(b, uc.Run{Workload: "tpch", Design: uc.DesignNone, Capacity: size})
			var res uc.Result
			for i := 0; i < b.N; i++ {
				res = execute(b, uc.Run{Workload: "tpch", Design: uc.DesignUnison, Capacity: size})
			}
			b.ReportMetric(res.UIPC/base.UIPC, "speedup")
			b.ReportMetric(res.MissRatioPct(), "miss_pct")
		})
	}
}

// BenchmarkAblationWayPredictor quantifies §V-B: way prediction versus
// fetching all ways and versus serializing tag-then-data.
func BenchmarkAblationWayPredictor(b *testing.B) {
	variants := []struct {
		name string
		mod  func(*uc.Run)
	}{
		{"predicted", func(r *uc.Run) {}},
		{"fetch-all-ways", func(r *uc.Run) { r.DisableWayPrediction = true }},
		{"serialized-tag", func(r *uc.Run) { r.SerializeTagData = true }},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			var res uc.Result
			for i := 0; i < b.N; i++ {
				run := uc.Run{Workload: "web-search", Design: uc.DesignUnison, Capacity: 1 << 30}
				v.mod(&run)
				res = execute(b, run)
			}
			b.ReportMetric(res.UIPC, "uipc")
			b.ReportMetric(float64(res.Stacked.BytesRead)/float64(res.Instructions)*1000, "stacked_B_per_KI")
		})
	}
}

// BenchmarkAblationSingleton quantifies §III-A.4: singleton bypass on the
// singleton-heavy Data Analytics workload.
func BenchmarkAblationSingleton(b *testing.B) {
	for _, disable := range []bool{false, true} {
		name := "bypass-on"
		if disable {
			name = "bypass-off"
		}
		b.Run(name, func(b *testing.B) {
			var res uc.Result
			for i := 0; i < b.N; i++ {
				res = execute(b, uc.Run{Workload: "data-analytics", Design: uc.DesignUnison,
					Capacity: 1 << 30, DisableSingleton: disable})
			}
			b.ReportMetric(res.MissRatioPct(), "miss_pct")
			b.ReportMetric(float64(res.Design.SingletonSkips), "singleton_skips")
		})
	}
}

// BenchmarkEnergyProxy regenerates the §V-D discussion's metric: off-chip
// row activations per kilo-instruction, where footprint-granularity
// transfers give page-based designs an order-of-magnitude advantage.
func BenchmarkEnergyProxy(b *testing.B) {
	for _, d := range []uc.DesignKind{uc.DesignAlloy, uc.DesignUnison} {
		b.Run(string(d), func(b *testing.B) {
			var res uc.Result
			for i := 0; i < b.N; i++ {
				res = execute(b, uc.Run{Workload: "web-serving", Design: d, Capacity: 1 << 30})
			}
			b.ReportMetric(float64(res.Offchip.Activations)/float64(res.Instructions)*1000, "offchip_acts_per_KI")
		})
	}
}
